// Package ooc is the out-of-core factor store: it realizes the paper's
// concluding argument that factor entries are written once and never
// reaccessed before the solve phase, so they can leave memory as soon as
// they are produced and only the stack (contribution blocks + active
// fronts) need stay resident.
//
// FileStore implements front.Store over a spill file. The factorization
// side is a bounded producer/consumer: executor workers Put factor
// blocks into a resident buffer (budget in model entries, the units of
// the assembly cost model) and a background writer goroutine drains the
// buffer to disk in arrival order, discharging each block from the
// shared resident-memory meter the moment it is durable. Put blocks only
// while the buffer is over budget, which is what bounds the resident
// factor footprint; a block larger than the whole budget is still
// admitted when the buffer is empty, so progress is always possible.
//
// The solve side streams blocks back: the solve announces its access
// order (postorder, then reverse postorder) via Prefetch, and a reader
// goroutine loads blocks ahead of the walk into a cache bounded by the
// same entry budget. A Fetch that outruns the reader falls back to a
// direct positioned read, so correctness never depends on the prefetch
// keeping up. One solve may run at a time — BeginSolve enforces it by
// rejecting an overlapping solve (which would silently cancel the
// running solve's prefetch stream mid-pass); within one solve, Fetch and
// Release of distinct nodes may come from concurrent workers.
//
// Fault tolerance: spill I/O retries transient errors (including short
// writes — WriteAt at a fixed offset is idempotent, so a retry rewrites
// the whole block) with exponential backoff, and a block whose write
// keeps failing is by default retained in-core under the meter budget
// (Stats.DegradedBlocks) instead of failing the run — a dying disk slows
// a factorization, it does not kill it. SetContext binds the store to a
// context.Context so cancellation stops the spiller and prefetcher
// promptly. Both paths are numerically invisible: retried and degraded
// runs produce factors bitwise identical to clean ones.
//
// Records round-trip float bits exactly (see codec.go), so an
// out-of-core factorization is bitwise identical to the in-core one.
package ooc

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/front"
	"repro/internal/memory"
	"repro/internal/trace"
)

// Options configures a FileStore.
type Options struct {
	// Dir is the directory for the spill file ("" = os.TempDir()).
	Dir string
	// BufferEntries is the resident-buffer budget in model entries for
	// both the write buffer and the solve-phase prefetch cache
	// (0 = 1<<16 entries, i.e. 512 KiB of float64 payload).
	BufferEntries int64
	// Prefetch is the maximum number of blocks the solve-phase reader
	// loads ahead of the walk (0 = 8).
	Prefetch int
	// RetryMax is how many times a failed spill read or write is retried
	// before the failure counts as persistent (0 = 3, negative = none).
	RetryMax int
	// RetryBase is the first retry's backoff; it doubles per attempt,
	// capped at 250ms (0 = 1ms).
	RetryBase time.Duration
	// NoDegrade disables the write-failure fallback. By default a block
	// whose spill write still fails after retries is retained in-core
	// under the meter budget (Stats.DegradedBlocks) and the run
	// continues; with NoDegrade the first persistent write failure
	// poisons the store instead.
	NoDegrade bool
	// Faults, when non-nil, arms deterministic fault injection at the
	// store's spill-write, spill-read and decode points (see
	// internal/faults). nil is a zero-cost no-op.
	Faults *faults.Injector
	// Tracer, when non-nil, records store activity on the trace's store
	// track: spill-write spans from the writer goroutine and queue/read
	// instants (see internal/trace). nil disables tracing at zero cost.
	Tracer *trace.Tracer
}

// Stats reports what the store did.
type Stats struct {
	Blocks       int   // factor blocks spilled
	BytesWritten int64 // spill-file bytes
	BufferPeak   int64 // peak resident write-buffer occupation (entries)
	PutWaits     int64 // Put calls that blocked on the buffer budget
	DirectReads  int64 // solve-phase Fetches served outside the prefetch stream
	BlocksRead   int64 // spill-file block reads (prefetch stream + direct Fetches)
	// Retries counts spill I/O attempts repeated after a transient error
	// or short write; nonzero Retries with zero DegradedBlocks means the
	// backoff absorbed every fault.
	Retries int64
	// DegradedBlocks counts blocks retained in-core after their spill
	// write failed persistently (degraded mode); DegradedEntries is their
	// total size in model entries, still charged to the resident meter.
	DegradedBlocks  int64
	DegradedEntries int64
	// QueuedEntries is the write-buffer occupation at the moment Stats was
	// called — a live gauge (the other fields are cumulative counters), so
	// a mid-run observability scrape can watch the spill backlog.
	QueuedEntries int64
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("ooc: store closed")

// rec locates one node's block in the spill file.
type rec struct {
	off     int64
	size    int64
	entries int64
	ok      bool
}

// putReq is one block waiting for the writer.
type putReq struct {
	ni      int
	nf      front.NodeFactor
	entries int64
}

// FileStore is the file-backed front.Store. Create with NewFileStore and
// Close when done (Close removes the spill file).
type FileStore struct {
	opt   Options
	meter *memory.Meter
	file  *os.File
	path  string

	mu   sync.Mutex
	cond *sync.Cond

	// Factorization side.
	queue      []putReq       // blocks waiting for the writer, FIFO
	queued     int64          // entries in queue + the block being written
	off        int64          // next spill-file offset
	recs       []rec          // node -> spill location
	degraded   map[int]putReq // blocks kept in-core after persistent write failure
	writerDone bool
	closed     bool
	err        error
	stats      Stats
	ctxStop    chan struct{} // closes the SetContext watcher

	// Solve side, reset by each Prefetch.
	solving  bool // a BeginSolve/EndSolve bracket is open
	gen      int  // prefetch generation; bumping it cancels the reader
	cache    map[int]*front.NodeFactor
	cached   int64         // entries in cache + handed out via Fetch
	ahead    int           // blocks in cache (reader lookahead gauge)
	consumed map[int]bool  // nodes already Fetched this generation
	handed   map[int]int64 // node -> entries, Fetched but not Released
}

// NewFileStore creates the spill file and starts the writer goroutine.
func NewFileStore(opt Options) (*FileStore, error) {
	if opt.BufferEntries <= 0 {
		opt.BufferEntries = 1 << 16
	}
	if opt.Prefetch <= 0 {
		opt.Prefetch = 8
	}
	switch {
	case opt.RetryMax == 0:
		opt.RetryMax = 3
	case opt.RetryMax < 0:
		opt.RetryMax = 0
	}
	if opt.RetryBase <= 0 {
		opt.RetryBase = time.Millisecond
	}
	dir := opt.Dir
	if dir == "" {
		dir = os.TempDir()
	}
	f, err := os.CreateTemp(dir, "ooc-factors-*.bin")
	if err != nil {
		return nil, fmt.Errorf("ooc: create spill file: %w", err)
	}
	s := &FileStore{
		opt:      opt,
		file:     f,
		path:     f.Name(),
		degraded: map[int]putReq{},
		cache:    map[int]*front.NodeFactor{},
		consumed: map[int]bool{},
		handed:   map[int]int64{},
	}
	s.cond = sync.NewCond(&s.mu)
	go s.writer()
	return s, nil
}

// Path returns the spill-file path (useful for diagnostics).
func (s *FileStore) Path() string { return s.path }

// Stats returns a snapshot of the store's counters.
func (s *FileStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.QueuedEntries = s.queued
	return st
}

// FaultCounters reports the store's fault-tolerance activity: spill I/O
// retries and blocks degraded to in-core. It satisfies the optional
// front.FaultStatser interface the executors use to fold store
// resilience into memory.ExecStats.
func (s *FileStore) FaultCounters() (retries, degradedBlocks int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats.Retries, s.stats.DegradedBlocks
}

// SetMeter installs the shared resident meter. Blocks are charged on Put
// (and when loaded back for the solve) and discharged once spilled (and
// on Release). Call before the first Put.
func (s *FileStore) SetMeter(m *memory.Meter) {
	s.mu.Lock()
	s.meter = m
	s.mu.Unlock()
}

// SetContext binds the store's lifetime to ctx: on cancellation the
// spiller and prefetcher stop promptly, blocked Put/Flush calls return
// the cancellation error, and the store stays safe to Close. A context
// that can never be cancelled is a no-op. Call before the first Put.
func (s *FileStore) SetContext(ctx context.Context) {
	if ctx == nil || ctx.Done() == nil {
		return
	}
	stop := make(chan struct{})
	s.mu.Lock()
	if s.ctxStop != nil {
		close(s.ctxStop)
	}
	s.ctxStop = stop
	s.mu.Unlock()
	go func() {
		select {
		case <-ctx.Done():
			s.mu.Lock()
			if s.err == nil && !s.closed {
				s.err = fmt.Errorf("ooc: store cancelled: %w", context.Cause(ctx))
			}
			s.cond.Broadcast()
			s.mu.Unlock()
		case <-stop:
		}
	}()
}

// Put hands node ni's factor block to the store. It blocks while the
// write buffer is over budget and other blocks are still draining. The
// first writer failure (after retries, when degradation is disabled)
// surfaces here immediately — not just at Flush/Close — so the executor
// stops producing blocks a dead store can never drain.
func (s *FileStore) Put(ni int, nf front.NodeFactor, entries int64) error {
	if ni < 0 {
		return fmt.Errorf("ooc: negative node %d", ni)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	waited := false
	for s.err == nil && !s.closed && s.queued > 0 && s.queued+entries > s.opt.BufferEntries {
		if !waited {
			s.stats.PutWaits++
			waited = true
		}
		s.cond.Wait()
	}
	if s.err != nil {
		return s.err
	}
	if s.closed {
		return ErrClosed
	}
	s.queued += entries
	if s.queued > s.stats.BufferPeak {
		s.stats.BufferPeak = s.queued
	}
	s.queue = append(s.queue, putReq{ni: ni, nf: nf, entries: entries})
	s.meter.Add(entries)
	s.cond.Broadcast()
	s.opt.Tracer.StoreInstant(trace.EvOOCPut, ni, entries*8)
	return nil
}

// writer drains the put queue to the spill file in arrival order,
// discharging each block from the meter once written (or parking it in
// the degraded set when the write fails persistently).
func (s *FileStore) writer() {
	var buf []byte
	s.mu.Lock()
	for {
		for len(s.queue) == 0 && !s.closed && s.err == nil {
			s.cond.Wait()
		}
		if len(s.queue) == 0 || s.err != nil {
			// Closed (or poisoned) with nothing useful left: discard any
			// stragglers so the meter balances, then exit.
			for _, r := range s.queue {
				s.queued -= r.entries
				s.meter.Add(-r.entries)
			}
			s.queue = nil
			s.writerDone = true
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		r := s.queue[0]
		s.queue = s.queue[1:]
		off := s.off
		s.mu.Unlock()

		// Only this goroutine opens store-track spans, so they balance.
		// The write section runs unlocked and contains panics (an injected
		// spill-write panic or a codec bug degrades the block instead of
		// wedging every Put waiting on writerDone).
		s.opt.Tracer.StoreBegin(trace.SpanSpill, r.ni)
		var werr error
		buf, werr = func() (b []byte, err error) {
			defer func() {
				if p := recover(); p != nil {
					b = buf[:0]
					err = fmt.Errorf("panic spilling node %d: %v", r.ni, p)
				}
			}()
			b = appendBlock(buf[:0], &r.nf)
			return b, s.writeAll(b, off, r.ni)
		}()
		s.opt.Tracer.StoreEnd(trace.SpanSpill, r.ni, int64(len(buf)))

		s.mu.Lock()
		switch {
		case werr == nil:
			if s.err == nil {
				s.setRec(r.ni, rec{off: off, size: int64(len(buf)), entries: r.entries, ok: true})
				s.off = off + int64(len(buf))
				s.stats.Blocks++
				s.stats.BytesWritten += int64(len(buf))
			}
			s.queued -= r.entries
			s.meter.Add(-r.entries)
		case s.opt.NoDegrade || s.closed || s.err != nil:
			if s.err == nil {
				s.err = fmt.Errorf("ooc: spill write (node %d): %w", r.ni, werr)
			}
			s.queued -= r.entries
			s.meter.Add(-r.entries)
		default:
			// Graceful degradation: the disk would not take this block, so
			// it stays resident — still charged to the meter, served from
			// memory at solve time — and the run continues.
			s.degraded[r.ni] = r
			s.stats.DegradedBlocks++
			s.stats.DegradedEntries += r.entries
			s.queued -= r.entries
			s.opt.Tracer.StoreInstant(trace.EvOOCDegrade, r.ni, r.entries*8)
		}
		s.cond.Broadcast()
	}
}

// writeAll writes buf at offset off, retrying transient failures —
// including short writes, which WriteAt's fixed offset makes safe to
// repair by rewriting the whole block — with exponential backoff. It
// returns the last error once retries are exhausted or the store is
// poisoned/closed mid-retry.
func (s *FileStore) writeAll(buf []byte, off int64, ni int) error {
	for attempt := 0; ; attempt++ {
		n, err := s.opt.Faults.CheckWrite(faults.SpillWrite, ni, len(buf))
		if err == nil {
			var wn int
			wn, err = s.file.WriteAt(buf[:n], off)
			if err == nil && n == len(buf) {
				return nil
			}
			if err == nil {
				err = fmt.Errorf("short write (%d of %d bytes)", wn, len(buf))
			}
		}
		if attempt >= s.opt.RetryMax || !s.noteRetry() {
			return err
		}
		time.Sleep(s.backoff(attempt))
	}
}

// noteRetry counts one retry, or reports false when the store has been
// poisoned or closed so in-flight retry loops stop early.
func (s *FileStore) noteRetry() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil || s.closed {
		return false
	}
	s.stats.Retries++
	return true
}

// backoff is the sleep before retry attempt+1: RetryBase doubling per
// attempt, capped at 250ms.
func (s *FileStore) backoff(attempt int) time.Duration {
	d := s.opt.RetryBase
	for i := 0; i < attempt && d < 250*time.Millisecond; i++ {
		d *= 2
	}
	if d > 250*time.Millisecond {
		d = 250 * time.Millisecond
	}
	return d
}

// setRec grows the index as needed; callers hold s.mu.
func (s *FileStore) setRec(ni int, r rec) {
	for ni >= len(s.recs) {
		s.recs = append(s.recs, rec{})
	}
	s.recs[ni] = r
}

// getRec returns node ni's spill location; callers hold s.mu.
func (s *FileStore) getRec(ni int) (rec, bool) {
	if ni < 0 || ni >= len(s.recs) || !s.recs[ni].ok {
		return rec{}, false
	}
	return s.recs[ni], true
}

// Flush blocks until every block Put so far is on disk (or parked in the
// degraded set), then syncs the spill file.
func (s *FileStore) Flush() error {
	s.mu.Lock()
	for s.err == nil && !s.closed && s.queued > 0 {
		s.cond.Wait()
	}
	err := s.err
	closed := s.closed
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if closed {
		return ErrClosed
	}
	return s.file.Sync()
}

// BeginSolve opens a solve pass sequence. A second solve against the
// same store is rejected until the first's EndSolve: its Prefetch calls
// would cancel the running solve's reader mid-pass and the two walks
// would fight over the consumed set.
func (s *FileStore) BeginSolve() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.solving {
		return fmt.Errorf("ooc: solve already in progress (one solve may run at a time)")
	}
	s.solving = true
	return nil
}

// EndSolve closes the solve begun by the matching BeginSolve, cancelling
// its reader and dropping whatever it still had cached (crediting the
// meter), so the store is quiescent for the next solve.
func (s *FileStore) EndSolve() {
	s.mu.Lock()
	s.solving = false
	s.gen++ // cancel this solve's reader
	s.dropCacheLocked()
	s.mu.Unlock()
}

// Prefetch starts streaming blocks in the given order into the solve
// cache, cancelling any previous prefetch and resetting the per-pass
// consumed set (the backward pass re-reads every block the forward pass
// already used).
func (s *FileStore) Prefetch(order []int) {
	s.mu.Lock()
	s.gen++
	gen := s.gen
	s.dropCacheLocked()
	s.consumed = make(map[int]bool, len(order))
	s.mu.Unlock()
	ord := append([]int(nil), order...)
	go s.reader(gen, ord)
}

// dropCacheLocked discards un-Fetched cached blocks, crediting the meter;
// blocks handed out via Fetch stay charged until Release.
func (s *FileStore) dropCacheLocked() {
	for ni, nf := range s.cache {
		e := blockEntries(nf)
		s.cached -= e
		s.meter.Add(-e)
		delete(s.cache, ni)
	}
	s.ahead = 0
	s.cond.Broadcast()
}

// blockEntries is the cache-accounting size of a loaded block. The codec
// stores full rectangles, so this over-counts symmetric model entries
// slightly; being conservative only tightens the budget.
func blockEntries(nf *front.NodeFactor) int64 {
	n := int64(len(nf.L.A))
	if nf.U != nil {
		n += int64(len(nf.U.A))
	}
	return n
}

// reader is the solve-phase prefetcher for one generation: it loads
// blocks in walk order into the cache, bounded by the entry budget and
// the lookahead cap, and stops as soon as the generation is stale.
// Degraded blocks have no spill record, so the walk skips them — Fetch
// serves those from memory.
func (s *FileStore) reader(gen int, order []int) {
	for _, ni := range order {
		s.mu.Lock()
		if s.gen != gen || s.closed || s.err != nil {
			s.mu.Unlock()
			return
		}
		if s.consumed[ni] || s.cache[ni] != nil {
			s.mu.Unlock()
			continue
		}
		r, ok := s.getRec(ni)
		if !ok {
			s.mu.Unlock()
			continue
		}
		for s.gen == gen && !s.closed && s.err == nil && s.cached > 0 &&
			(s.cached+r.entries > s.opt.BufferEntries || s.ahead >= s.opt.Prefetch) {
			s.cond.Wait()
		}
		if s.gen != gen || s.closed || s.err != nil {
			s.mu.Unlock()
			return
		}
		if s.consumed[ni] {
			s.mu.Unlock()
			continue
		}
		s.mu.Unlock()

		nf, err := s.readBlockSafe(ni, r)

		s.mu.Lock()
		s.stats.BlocksRead++
		if err != nil {
			if s.err == nil {
				s.err = err
			}
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		if s.gen == gen && !s.consumed[ni] {
			e := blockEntries(nf)
			s.cache[ni] = nf
			s.cached += e
			s.meter.Add(e)
			s.ahead++
			s.cond.Broadcast()
			s.opt.Tracer.StoreInstant(trace.EvPrefetchRead, ni, r.size)
		}
		s.mu.Unlock()
	}
}

// readBlockSafe is readBlock with panic containment for the prefetcher
// goroutine: a decode panic becomes an error that poisons the store
// instead of killing the process.
func (s *FileStore) readBlockSafe(ni int, r rec) (nf *front.NodeFactor, err error) {
	defer func() {
		if p := recover(); p != nil {
			nf, err = nil, fmt.Errorf("ooc: panic reading node %d: %v", ni, p)
		}
	}()
	return s.readBlock(ni, r)
}

// readBlock does one positioned read + decode (no lock held), retrying
// transient read errors with the same backoff as the write path. Decode
// errors are never retried: a record that reads back but will not parse
// is corruption, not transience.
func (s *FileStore) readBlock(ni int, r rec) (*front.NodeFactor, error) {
	buf := make([]byte, r.size)
	for attempt := 0; ; attempt++ {
		err := s.opt.Faults.Check(faults.SpillRead, ni)
		if err == nil {
			_, err = s.file.ReadAt(buf, r.off)
		}
		if err == nil {
			break
		}
		if attempt >= s.opt.RetryMax || !s.noteRetry() {
			return nil, fmt.Errorf("ooc: spill read (node %d): %w", ni, err)
		}
		time.Sleep(s.backoff(attempt))
	}
	if err := s.opt.Faults.Check(faults.Decode, ni); err != nil {
		return nil, fmt.Errorf("ooc: decode (node %d): %w", ni, err)
	}
	nf, err := decodeBlock(buf)
	if err != nil {
		return nil, fmt.Errorf("ooc: decode (node %d): %w", ni, err)
	}
	return nf, nil
}

// Fetch returns node ni's factor block: from memory when the block was
// degraded, from the prefetch cache when the reader got there first, and
// by direct read otherwise. It never blocks on the reader.
func (s *FileStore) Fetch(ni int) (*front.NodeFactor, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if s.err != nil {
		err := s.err
		s.mu.Unlock()
		return nil, err
	}
	s.consumed[ni] = true
	if d, ok := s.degraded[ni]; ok {
		// Degraded blocks are already resident and meter-charged since
		// their Put; Release is a no-op for them (no handed entry) and
		// Close credits them back.
		s.mu.Unlock()
		nf := d.nf
		return &nf, nil
	}
	if nf := s.cache[ni]; nf != nil {
		delete(s.cache, ni)
		s.ahead--
		// Stays charged (cached includes handed-out blocks) until Release.
		s.handed[ni] = blockEntries(nf)
		s.cond.Broadcast()
		s.mu.Unlock()
		return nf, nil
	}
	r, ok := s.getRec(ni)
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("ooc: no factor block for node %d (factorization incomplete or not flushed)", ni)
	}
	s.stats.DirectReads++
	s.mu.Unlock()

	nf, err := s.readBlock(ni, r)
	if err != nil {
		return nil, err
	}
	s.opt.Tracer.StoreInstant(trace.EvDirectRead, ni, r.size)
	e := blockEntries(nf)
	s.mu.Lock()
	s.stats.BlocksRead++
	s.handed[ni] = e
	s.cached += e
	s.meter.Add(e)
	s.mu.Unlock()
	return nf, nil
}

// Release ends the caller's use of a Fetched block, crediting the cache
// budget and the meter.
func (s *FileStore) Release(ni int) {
	s.mu.Lock()
	if e, ok := s.handed[ni]; ok {
		delete(s.handed, ni)
		s.cached -= e
		s.meter.Add(-e)
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// Close stops the writer, reader and context watcher, discharges
// everything still resident (including degraded blocks), closes and
// removes the spill file. It is safe to call after an aborted
// factorization (pending blocks are discarded).
func (s *FileStore) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.gen++ // cancel any reader
	if s.ctxStop != nil {
		close(s.ctxStop)
		s.ctxStop = nil
	}
	s.cond.Broadcast()
	for !s.writerDone {
		s.cond.Wait()
	}
	s.dropCacheLocked()
	for ni, e := range s.handed {
		delete(s.handed, ni)
		s.cached -= e
		s.meter.Add(-e)
	}
	for ni, r := range s.degraded {
		delete(s.degraded, ni)
		s.meter.Add(-r.entries)
	}
	s.mu.Unlock()
	err := s.file.Close()
	if rmErr := os.Remove(s.path); err == nil {
		err = rmErr
	}
	return err
}
