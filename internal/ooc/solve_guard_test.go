package ooc

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/memory"
)

// TestOverlappingSolveRejected is the regression test for the solve-pass
// guard: the doc always said "one solve may run at a time", but nothing
// enforced it — a second concurrent Prefetch silently cancelled the
// first solve's reader mid-pass. BeginSolve must reject the overlap and
// admit a new solve once the first ends.
func TestOverlappingSolveRejected(t *testing.T) {
	s, err := NewFileStore(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetMeter(new(memory.Meter))
	rng := rand.New(rand.NewSource(5))
	for ni := 0; ni < 4; ni++ {
		b := randomBlock(rng, 4, 2, true)
		if err := s.Put(ni, b, int64(len(b.L.A))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	if err := s.BeginSolve(); err != nil {
		t.Fatalf("first BeginSolve: %v", err)
	}
	if err := s.BeginSolve(); err == nil {
		t.Fatal("overlapping BeginSolve succeeded; want error")
	} else if !strings.Contains(err.Error(), "solve already in progress") {
		t.Fatalf("overlapping BeginSolve: unhelpful error %q", err)
	}
	// The running solve is unaffected by the rejected attempt.
	s.Prefetch([]int{0, 1, 2, 3})
	for ni := 0; ni < 4; ni++ {
		if _, err := s.Fetch(ni); err != nil {
			t.Fatalf("fetch %d during solve: %v", ni, err)
		}
		s.Release(ni)
	}
	s.EndSolve()

	// A new solve is admitted after the first ends.
	if err := s.BeginSolve(); err != nil {
		t.Fatalf("BeginSolve after EndSolve: %v", err)
	}
	s.EndSolve()

	// A closed store reports closed, not busy.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.BeginSolve(); err != ErrClosed {
		t.Fatalf("BeginSolve on closed store: %v, want ErrClosed", err)
	}
}

// TestEndSolveDropsCache ends a solve between the prefetch and the walk:
// whatever the reader cached must be discarded and credited back to the
// meter, leaving the store quiescent for the next solve.
func TestEndSolveDropsCache(t *testing.T) {
	s, err := NewFileStore(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m := new(memory.Meter)
	s.SetMeter(m)
	rng := rand.New(rand.NewSource(6))
	order := make([]int, 6)
	for ni := range order {
		order[ni] = ni
		b := randomBlock(rng, 5, 2, false)
		if err := s.Put(ni, b, int64(len(b.L.A))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.BeginSolve(); err != nil {
		t.Fatal(err)
	}
	s.Prefetch(order)
	if _, err := s.Fetch(0); err != nil { // let the pass start
		t.Fatal(err)
	}
	s.Release(0)
	s.EndSolve()
	if got := m.Cur(); got != 0 {
		t.Fatalf("meter holds %d entries after EndSolve; want 0", got)
	}
}
