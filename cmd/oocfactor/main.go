// Command oocfactor runs the out-of-core numeric factorization of one
// matrix — factor blocks spilled to disk as they are produced — next to
// the classic in-core run, and compares the *measured* resident peaks
// with the simulator's prediction. It makes the paper's concluding
// argument executable: factors are written once and not reaccessed
// before the solve phase, so the stack is the true resident cost.
//
// Usage:
//
//	oocfactor -matrix NAME|-mm FILE [-ordering METIS|PORD|AMD|AMF|RCM]
//	          [-workers W] [-budget ENTRIES] [-dir DIR] [-prefetch N]
//	          [-split N] [-front-split N] [-block-rows N] [-root-grid N]
//	          [-slaves memory|workload] [-kernel FAMILY] [-nrhs K] [-small]
//	          [-trace FILE] [-metrics FILE] [-pprof PREFIX]
//	          [-listen HOST:PORT] [-listen-linger D]
//	          [-timeout D] [-faults SPEC]
//
// Fault tolerance: -timeout bounds the whole run with a context deadline
// (executors and the spill writer drain deterministically; nonzero
// exit), and -faults arms a deterministic fault-injection schedule
// (internal/faults grammar, e.g. 'spill-write:error:2:3'). Transient
// spill-write failures are retried with exponential backoff; persistent
// ones degrade gracefully — the affected blocks stay resident in-core
// and the run completes with identical numerics, reporting the retry
// and degraded-block counts.
//
// Observability: -trace writes Chrome trace_event JSON covering both runs
// (the OOC run's store track shows the spill writer and solve-pass
// reads), -metrics writes the aggregated counters snapshot of the OOC run
// (Prometheus text format, or JSON with a .json path), and -pprof
// captures CPU and heap profiles. -listen serves the live observability
// plane (/metrics, /progress, /runs, /debug/pprof, /trace.json,
// /timeline.csv) while the runs execute — during the OOC run /progress
// also carries the spill-store counters, including the live write-buffer
// occupation. -listen-linger keeps the server up after completion.
//
// -workers 1 uses the sequential executor on both sides; higher counts
// use the shared-memory parallel executor. The solve results of the two
// runs are cross-checked (they are bitwise identical: the spill format
// round-trips float bits, and both runs use the same kernel family).
// The solve handles -nrhs right-hand sides as one blocked pass: the
// spilled factors stream off disk exactly twice (one forward and one
// backward sweep) no matter how many columns ride along.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/metrics"
	"repro/internal/ooc"
	"repro/internal/parmf"
	"repro/internal/parsim"
	"repro/internal/sparse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("oocfactor: ")
	var common cliflags.Common
	common.Register(flag.CommandLine, 1)
	budget := flag.Int64("budget", 0, "resident spill-buffer budget in entries (0 = factors/16)")
	dir := flag.String("dir", "", "spill directory (default: system temp dir)")
	prefetch := flag.Int("prefetch", 0, "solve-phase read-ahead in blocks (0 = 8)")
	flag.Parse()

	if err := common.Validate(); err != nil {
		log.Fatal(err)
	}
	a, err := common.Load()
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := common.CoreConfig()
	if err != nil {
		log.Fatal(err)
	}
	obs, err := common.Observability()
	if err != nil {
		log.Fatal(err)
	}
	cfg.Tracer = obs.Tracer
	cfg.OOC = ooc.Options{Dir: *dir, BufferEntries: *budget, Prefetch: *prefetch}
	inj, _ := common.Injector() // validated above
	cfg.Faults = inj
	obs.SetFaults(inj)
	ctx, cancel := common.Context()
	defer cancel()
	// fatal routes run failures through the observability plane first: the
	// registered run flips to "failed" (visible through -listen-linger) and
	// the trace/metrics/profile outputs still get written for post-mortem.
	fatal := func(err error) {
		if errors.Is(err, context.DeadlineExceeded) {
			err = fmt.Errorf("run exceeded -timeout %v: %w", common.Timeout, err)
		}
		obs.Abort(err, memory.ExecStats{})
		log.Fatal(err)
	}
	an, err := core.Analyze(a, cfg)
	if err != nil {
		fatal(err)
	}
	st := an.Stats()
	fmt.Printf("matrix:    n=%d nnz=%d %v\n", st.N, st.NNZ, a.Kind)
	fmt.Printf("analysis:  %d fronts, max front %d; factors %d entries, sequential stack peak %d\n",
		st.Fronts, st.MaxFront, st.FactorEntries, st.SeqPeak)

	// Simulator prediction for the same processor count: the in-core total
	// peak vs the stack-only peak that remains resident out-of-core.
	sim, err := an.Simulate(parsim.MemoryBased())
	if err != nil {
		fatal(err)
	}

	slaves, _ := common.SlavePolicy() // validated above

	run := func(oocRun bool) (resident int64, factorWall, solveWall time.Duration, x []float64, spill *ooc.Stats, stats memory.ExecStats) {
		b := make([]float64, a.N*common.NRHS)
		rng := rand.New(rand.NewSource(1))
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		t0 := time.Now()
		var solver cliflags.Solver
		var store *ooc.FileStore
		if common.Workers == 1 {
			var f cliflags.FactorSolver
			if oocRun {
				of, fs, err := an.FactorizeOOCCtx(ctx)
				if err != nil {
					fatal(err)
				}
				store = fs
				resident = of.Stats.ResidentPeak
				stats = of.Stats
				f = of
			} else {
				sf, err := an.FactorizeCtx(ctx)
				if err != nil {
					fatal(err)
				}
				resident = sf.Stats.ResidentPeak
				stats = sf.Stats
				f = sf
			}
			defer f.Close()
			solver = f
		} else {
			pcfg := parmf.DefaultConfig(common.Workers)
			pcfg.SlavePolicy = slaves
			if oocRun {
				pf, fs, err := an.FactorizeParallelOOCCtx(ctx, pcfg)
				if err != nil {
					fatal(err)
				}
				store = fs
				resident = pf.Stats.ResidentPeak
				stats = pf.Stats.ExecStats
				defer pf.Close()
				solver = pf
			} else {
				pf, err := an.FactorizeParallelCtx(ctx, pcfg)
				if err != nil {
					fatal(err)
				}
				resident = pf.Stats.ResidentPeak
				stats = pf.Stats.ExecStats
				solver = pf
			}
		}
		factorWall = time.Since(t0)
		if store != nil && obs.Run != nil {
			// /progress carries the spill-store counters from here on (the
			// solve phase still accrues reads, and the final numbers stay
			// visible through -listen-linger).
			obs.Run.SetSpill(store.Stats)
		}
		t0 = time.Now()
		x, err := solver.SolveOriginalMulti(b, common.NRHS)
		if err != nil {
			fatal(err)
		}
		solveWall = time.Since(t0)
		// Snapshot spill stats only after the solve: DirectReads counts
		// solve-phase fetches that outran the prefetcher.
		if store != nil {
			s := store.Stats()
			spill = &s
		}
		return resident, factorWall, solveWall, x, spill, stats
	}

	inPeak, inWall, inSolve, xIn, _, _ := run(false)
	oocPeak, oocWall, oocSolve, xOOC, spill, oocStats := run(true)

	t := metrics.New(fmt.Sprintf("measured vs simulated resident peaks (%d workers, entries)", common.Workers),
		"source", "in-core total", "OOC resident", "saving %")
	t.AddRow("simulated (max/proc)", sim.MaxTotalPeak, sim.MaxActivePeak,
		fmt.Sprintf("%.1f", metrics.PercentDecrease(sim.MaxTotalPeak, sim.MaxActivePeak)))
	t.AddRow("measured (process)", inPeak, oocPeak,
		fmt.Sprintf("%.1f", metrics.PercentDecrease(inPeak, oocPeak)))
	fmt.Println(t.Render())

	fmt.Printf("in-core:   %.3fs factor, %.3fs solve (%d rhs)\n",
		inWall.Seconds(), inSolve.Seconds(), common.NRHS)
	fmt.Printf("ooc:       %.3fs factor, %.3fs solve; spilled %d blocks, %.1f MiB; buffer peak %d entries, %d put waits, %d block reads, %d direct\n",
		oocWall.Seconds(), oocSolve.Seconds(), spill.Blocks, float64(spill.BytesWritten)/(1<<20),
		spill.BufferPeak, spill.PutWaits, spill.BlocksRead, spill.DirectReads)
	if oocStats.Retries > 0 || oocStats.DegradedBlocks > 0 {
		fmt.Printf("resilience: %d spill I/O retries, %d blocks degraded to in-core (numerics unaffected)\n",
			oocStats.Retries, oocStats.DegradedBlocks)
	}

	var maxDiff float64
	for i := range xIn {
		if d := math.Abs(xIn[i] - xOOC[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("solve:     residual %.3g; max |x_incore - x_ooc| = %g over %d rhs (bitwise identical factors)\n",
		residualOf(a, xIn, common.NRHS), maxDiff, common.NRHS)

	if err := obs.Finish(oocStats); err != nil {
		log.Fatalf("observability outputs: %v", err)
	}
}

// residualOf regenerates the run's right-hand-side block (seed 1) and
// returns the worst relative residual over its nrhs columns.
func residualOf(a *sparse.CSC, x []float64, nrhs int) float64 {
	rng := rand.New(rand.NewSource(1))
	b := make([]float64, a.N*nrhs)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	xc := make([]float64, a.N)
	var worst float64
	for c := 0; c < nrhs; c++ {
		for i := 0; i < a.N; i++ {
			xc[i] = x[i*nrhs+c]
		}
		ax := a.MulVec(xc)
		var rn, bn float64
		for i := range ax {
			d := ax[i] - b[i*nrhs+c]
			rn += d * d
			bc := b[i*nrhs+c]
			bn += bc * bc
		}
		if r := math.Sqrt(rn / bn); r > worst {
			worst = r
		}
	}
	return worst
}
