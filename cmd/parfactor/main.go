// Command parfactor runs the real shared-memory parallel numeric
// factorization of one matrix and reports wall-clock time, per-worker
// memory peaks and scheduling statistics, optionally cross-checked against
// the sequential executor.
//
// Usage:
//
//	parfactor -matrix NAME|-mm FILE [-ordering METIS|PORD|AMD|AMF|RCM]
//	          [-workers W] [-policy memory|depthfirst] [-split N]
//	          [-front-split N] [-block-rows N] [-root-grid N]
//	          [-slaves memory|workload] [-kernel FAMILY] [-bound ENTRIES]
//	          [-nrhs K] [-seq] [-small]
//	          [-trace FILE] [-metrics FILE] [-pprof PREFIX]
//	          [-listen HOST:PORT] [-listen-linger D]
//	          [-timeout D] [-faults SPEC]
//
// Fault tolerance: -timeout bounds the whole run with a context deadline
// (the worker pools drain deterministically and the tool exits nonzero
// with an error naming how far the run got), and -faults arms a
// deterministic fault-injection schedule (internal/faults grammar, e.g.
// 'task:error:5') for chaos testing — injected failures surface as
// descriptive errors, never hangs or leaked goroutines.
//
// Observability: -trace writes Chrome trace_event JSON of the run (task,
// front-phase and solve spans per worker plus exact memory counter
// tracks; load in chrome://tracing or Perfetto), -metrics writes the
// aggregated counters snapshot (Prometheus text format, or JSON with a
// .json path), and -pprof captures CPU and heap profiles. -listen serves
// all of it live while the run executes: /metrics (Prometheus scrape
// with progress, ETA and the resident gauge), /progress and /runs
// (JSON), /trace.json, /timeline.csv and /debug/pprof. -listen-linger
// keeps that server up after the run completes so scrapers can catch
// short runs.
//
// -matrix selects a problem from the paper's Table-1 suite by name
// (pattern-only analogues are given deterministic diagonally dominant
// values); -mm reads a MatrixMarket file instead. With -seq the sequential
// factorization also runs, and the tool prints the wall-clock speedup and
// the factor cross-validation result.
//
// -front-split and -block-rows control the within-front (type-2) parallel
// path: fronts of at least -front-split rows are factored as a master task
// plus slave row-block tasks of -block-rows rows each, with the slave set
// chosen by -slaves (Algorithm 1 of the paper, or the MUMPS workload
// baseline). -root-grid controls the 2D (type-3) decomposition of split
// root fronts: the trailing rows *and* columns become -block-rows tiles
// assigned block-cyclically over a worker grid (0 = auto-sized from the
// worker count, -1 = keep roots on the 1D partition). In the default
// kernel mode the factors never depend on these knobs — the partitions
// are pure functions of the front and the register-blocked kernels are
// bitwise identical to the element-wise ones — only wall-clock time and
// the per-worker memory shape do. -kernel selects the update kernel
// family: fast reorders accumulation for full register tiling, simd runs
// the fused-multiply-add family (AVX2/FMA assembly with a bitwise
// identical portable fallback), and auto picks simd when the hardware
// path is available, fast otherwise. Both non-default families keep the
// factors deterministic for a fixed -block-rows (any worker count or
// grid shape) but are validated by residual rather than bit equality.
// -fast-kernels is a deprecated alias of -kernel=fast. Set -front-split
// larger than the largest front to disable splitting.
//
// The solve phase runs tree-parallel over the same workers and handles
// -nrhs right-hand sides as one blocked pass (one forward and one
// backward sweep over the factors in total); each column carries the
// exact bits of a sequential single-RHS solve.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"strings"
	"time"

	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/parmf"
	"repro/internal/sparse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("parfactor: ")
	var common cliflags.Common
	common.Register(flag.CommandLine, 8)
	policy := flag.String("policy", "memory", "task selection: memory (Algorithm 2) or depthfirst")
	bound := flag.Int64("bound", 0, "per-worker memory bound in entries (0 = sequential peak)")
	seq := flag.Bool("seq", false, "also run seqmf: report speedup and cross-validate factors")
	flag.Parse()

	if err := common.Validate(); err != nil {
		log.Fatal(err)
	}
	a, err := common.Load()
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := common.CoreConfig()
	if err != nil {
		log.Fatal(err)
	}
	obs, err := common.Observability()
	if err != nil {
		log.Fatal(err)
	}
	cfg.Tracer = obs.Tracer
	inj, _ := common.Injector() // validated above
	cfg.Faults = inj
	obs.SetFaults(inj)
	ctx, cancel := common.Context()
	defer cancel()
	// fatal routes run failures through the observability plane first: the
	// registered run flips to "failed" (visible through -listen-linger) and
	// the trace/metrics/profile outputs still get written for post-mortem.
	fatal := func(err error) {
		if errors.Is(err, context.DeadlineExceeded) {
			err = fmt.Errorf("run exceeded -timeout %v: %w", common.Timeout, err)
		}
		obs.Abort(err, memory.ExecStats{})
		log.Fatal(err)
	}
	an, err := core.Analyze(a, cfg)
	if err != nil {
		fatal(err)
	}
	st := an.Stats()
	fmt.Printf("matrix:    n=%d nnz=%d %v\n", st.N, st.NNZ, a.Kind)
	fmt.Printf("analysis:  %d fronts, max front %d, %d split; sequential peak %d entries\n",
		st.Fronts, st.MaxFront, st.SplitCount, st.SeqPeak)

	pcfg := parmf.DefaultConfig(common.Workers)
	pcfg.PeakBound = *bound
	switch strings.ToLower(*policy) {
	case "memory":
		pcfg.Policy = parmf.MemoryAware
	case "depthfirst":
		pcfg.Policy = parmf.DepthFirst
	default:
		log.Fatalf("unknown policy %q", *policy)
	}
	pcfg.SlavePolicy, _ = common.SlavePolicy() // validated above

	t0 := time.Now()
	pf, err := an.FactorizeParallelCtx(ctx, pcfg)
	if err != nil {
		fatal(err)
	}
	parT := time.Since(t0)
	s := pf.Stats
	fmt.Printf("parallel:  %d workers, policy %v, kernels %s, %.3fs wall\n",
		s.Workers, pcfg.Policy, s.Kernel, parT.Seconds())
	fmt.Printf("  factors          %d entries\n", s.FactorEntries)
	fmt.Printf("  max worker peak  %d entries (bound %d)\n", s.PeakStack, s.PeakBound)
	for w, p := range s.WorkerPeaks {
		fmt.Printf("  worker %-2d        peak %d entries (stack-only %d)\n", w, p, s.WorkerStackPeaks[w])
	}
	fmt.Printf("  deviations %d, waits %d, forced %d\n", s.Deviations, s.Waits, s.Forced)
	fmt.Printf("  within-front     %d split fronts, %d slave tasks (%d stolen), slaves=%v, block-rows=%d\n",
		s.SplitFronts, s.SlaveTasks, s.SlaveSteals, pcfg.SlavePolicy, common.BlockRows)
	if s.Root2DFronts > 0 {
		fmt.Printf("  type-3 root      %d front(s) on a 2D tile grid, %.3fs in the root front\n",
			s.Root2DFronts, float64(s.RootFrontNs)/1e9)
	} else if s.RootFrontNs > 0 {
		fmt.Printf("  root front       1D split, %.3fs\n", float64(s.RootFrontNs)/1e9)
	}

	rng := rand.New(rand.NewSource(1))
	b := make([]float64, a.N*common.NRHS)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	t0 = time.Now()
	x, err := pf.Solver(0).SolveOriginalMultiCtx(ctx, b, common.NRHS)
	if err != nil {
		fatal(err)
	}
	solveT := time.Since(t0)
	fmt.Printf("  solve            %.3fs wall for %d rhs (%.2f ms/rhs), residual %.3g\n",
		solveT.Seconds(), common.NRHS, solveT.Seconds()*1e3/float64(common.NRHS),
		residual(a, x, b, common.NRHS))

	if *seq {
		t0 = time.Now()
		sf, err := an.FactorizeCtx(ctx)
		if err != nil {
			fatal(err)
		}
		seqT := time.Since(t0)
		fmt.Printf("sequential: %.3fs wall, peak %d entries\n", seqT.Seconds(), sf.Stats.PeakStack)
		fmt.Printf("  speedup          %.2fx\n", seqT.Seconds()/parT.Seconds())
		var maxDiff float64
		for ni := 0; ni < an.Tree.Len(); ni++ {
			na, nb := sf.Front().Node(ni), pf.Front().Node(ni)
			for p, v := range na.L.A {
				if d := math.Abs(v - nb.L.A[p]); d > maxDiff {
					maxDiff = d
				}
			}
			if na.U != nil {
				for p, v := range na.U.A {
					if d := math.Abs(v - nb.U.A[p]); d > maxDiff {
						maxDiff = d
					}
				}
			}
		}
		fmt.Printf("  max factor diff  %.3g\n", maxDiff)
	}

	if err := obs.Finish(pf.Stats.ExecStats); err != nil {
		log.Fatalf("observability outputs: %v", err)
	}
}

// residual returns the worst relative residual over the nrhs columns of
// the row-major n x nrhs solution and right-hand-side blocks.
func residual(a *sparse.CSC, x, b []float64, nrhs int) float64 {
	xc := make([]float64, a.N)
	var worst float64
	for c := 0; c < nrhs; c++ {
		for i := 0; i < a.N; i++ {
			xc[i] = x[i*nrhs+c]
		}
		ax := a.MulVec(xc)
		var rn, bn float64
		for i := range ax {
			d := ax[i] - b[i*nrhs+c]
			rn += d * d
			bc := b[i*nrhs+c]
			bn += bc * bc
		}
		if r := math.Sqrt(rn / bn); r > worst {
			worst = r
		}
	}
	return worst
}
