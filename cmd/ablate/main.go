// Command ablate decomposes the effect of each scheduling mechanism on one
// matrix/ordering cell: it simulates the workload baseline, each memory
// mechanism in isolation, their accumulation, and the full strategy, and
// prints the resulting peaks, gains, and peak composition (CB stack vs
// live fronts, peak processor and time). This is the tool behind the
// per-cell explanations of the paper's Section 6 ("the peak is obtained
// inside a subtree", "the peak is reached when a master of a large type 2
// node is allocated", ...).
//
// Usage:
//
//	ablate -matrix XENON2 -ordering AMF -procs 32 [-split] [-latency 20us]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/order"
	"repro/internal/parsim"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ablate: ")
	var (
		matrix  = flag.String("matrix", "TWOTONE", "Table 1 problem name")
		ordName = flag.String("ordering", "AMD", "ordering: METIS, PORD, AMD, AMF")
		procs   = flag.Int("procs", 32, "simulated processor count")
		split   = flag.Bool("split", false, "statically split large type-2 masters")
		small   = flag.Bool("small", false, "use the reduced suite")
		latency = flag.Duration("latency", 200*time.Nanosecond,
			"message latency (default matches parsim.DefaultParams; use 20us for the paper's raw interconnect)")
	)
	flag.Parse()

	suite := workload.Suite()
	if *small {
		suite = workload.SmallSuite()
	}
	p, err := workload.ByName(suite, *matrix)
	if err != nil {
		log.Fatal(err)
	}
	m, err := order.Parse(*ordName)
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultConfig(m, *procs)
	cfg.Params.Comm.Latency = des.Time(latency.Nanoseconds())
	an, err := core.Analyze(p.Matrix(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *split {
		an, err = an.WithSplit(an.LargestMaster()/3, 0)
		if err != nil {
			log.Fatal(err)
		}
	}
	st := an.Stats()
	fmt.Printf("%s / %v  n=%d nnz=%d fronts=%d type2=%d subtrees=%d seqpeak=%d split=%d\n\n",
		p.Name, m, st.N, st.NNZ, st.Fronts, st.Type2Nodes, st.Subtrees, st.SeqPeak, st.SplitCount)

	variants := []struct {
		name string
		st   parsim.Strategy
	}{
		{"workload (baseline)", parsim.Workload()},
		{"alg1 only", parsim.Strategy{MemorySlaveSelection: true}},
		{"alg1+subtree", parsim.Strategy{MemorySlaveSelection: true, UseSubtreeInfo: true}},
		{"alg1+subtree+pred", parsim.Strategy{MemorySlaveSelection: true, UseSubtreeInfo: true, UsePrediction: true}},
		{"alg2 only", parsim.Strategy{MemoryTaskSelection: true}},
		{"full memory-based", parsim.MemoryBased()},
	}

	t := metrics.New("",
		"strategy", "max peak", "gain %", "avg peak", "peak proc",
		"stack@peak", "fronts@peak", "peak t(ms)", "alg2 dev", "makespan(ms)")
	var base int64
	notes := make([]string, 0, len(variants))
	for i, v := range variants {
		r, err := parsim.Run(parsim.Config{
			Tree:     an.Tree,
			Map:      an.Mapping,
			Strategy: v.st,
			Params:   an.Config.Params,
			Snapshot: true,
		})
		if err != nil {
			log.Fatalf("%s: %v", v.name, err)
		}
		if i == 0 {
			base = r.MaxActivePeak
		}
		t.AddRow(v.name, r.MaxActivePeak,
			fmt.Sprintf("%.1f", metrics.PercentDecrease(base, r.MaxActivePeak)),
			fmt.Sprintf("%.0f", r.AvgActivePeak), r.PeakProc,
			r.PeakStack, r.PeakFronts,
			fmt.Sprintf("%.2f", float64(r.PeakTime)/1e6),
			r.Alg2Deviations,
			fmt.Sprintf("%.2f", float64(r.Makespan)/1e6))
		notes = append(notes, fmt.Sprintf("%-19s %s", v.name, r.PeakNote))
	}
	fmt.Fprintln(os.Stdout, t.Render())
	fmt.Println("peak composition (largest allocations on the peak processor):")
	for _, n := range notes {
		fmt.Println(" ", n)
	}
}
