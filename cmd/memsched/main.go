// Command memsched analyzes, factorizes and simulates one matrix.
//
// Usage:
//
//	memsched -matrix NAME|-mm FILE [-ordering METIS|PORD|AMD|AMF|RCM]
//	         [-procs P] [-strategy workload|memory] [-split N] [-numeric]
//
// -matrix selects a problem from the paper's Table-1 suite by name;
// -mm reads a MatrixMarket file instead. The tool prints the analysis
// statistics, the simulated parallel memory/time results for the chosen
// strategy, and (with -numeric) runs the real sequential factorization
// with a residual check.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/order"
	"repro/internal/parsim"
	"repro/internal/sparse"
	"repro/internal/workload"
)

func parseOrdering(s string) (order.Method, error) {
	switch strings.ToUpper(s) {
	case "METIS", "ND":
		return order.ND, nil
	case "PORD":
		return order.PORD, nil
	case "AMD":
		return order.AMD, nil
	case "AMF":
		return order.AMF, nil
	case "RCM":
		return order.RCM, nil
	case "NATURAL":
		return order.Natural, nil
	}
	return 0, fmt.Errorf("unknown ordering %q", s)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("memsched: ")
	name := flag.String("matrix", "", "suite problem name (see experiments -table 1)")
	mmFile := flag.String("mm", "", "MatrixMarket file to read instead of a suite problem")
	ordering := flag.String("ordering", "METIS", "fill-reducing ordering")
	procs := flag.Int("procs", 32, "simulated processor count")
	strategy := flag.String("strategy", "memory", "scheduling strategy: workload, memory or hybrid")
	split := flag.Int64("split", 0, "split masters larger than this many entries (0 = off)")
	numeric := flag.Bool("numeric", false, "also run the sequential numeric factorization")
	flag.Parse()

	var a *sparse.CSC
	switch {
	case *mmFile != "":
		f, err := os.Open(*mmFile)
		if err != nil {
			log.Fatal(err)
		}
		a, err = sparse.ReadMatrixMarket(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	case *name != "":
		p, err := workload.ByName(workload.Suite(), *name)
		if err != nil {
			log.Fatal(err)
		}
		a = p.Matrix()
	default:
		log.Fatal("need -matrix NAME or -mm FILE")
	}

	m, err := parseOrdering(*ordering)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig(m, *procs)
	cfg.SplitThreshold = *split
	an, err := core.Analyze(a, cfg)
	if err != nil {
		log.Fatal(err)
	}
	st := an.Stats()
	fmt.Printf("matrix:      n=%d nnz=%d %v\n", st.N, st.NNZ, a.Kind)
	fmt.Printf("analysis:    %d fronts, max front %d, %d subtrees, %d type-2 nodes, %d split\n",
		st.Fronts, st.MaxFront, st.Subtrees, st.Type2Nodes, st.SplitCount)
	fmt.Printf("model:       factors %d entries, %.3g flops, sequential peak %d entries\n",
		st.FactorEntries, float64(st.Flops), st.SeqPeak)

	var strat parsim.Strategy
	switch strings.ToLower(*strategy) {
	case "workload":
		strat = parsim.Workload()
	case "memory":
		strat = parsim.MemoryBased()
	case "hybrid":
		strat = parsim.Hybrid()
	default:
		log.Fatalf("unknown strategy %q", *strategy)
	}
	res, err := an.Simulate(strat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation:  P=%d strategy=%s\n", *procs, *strategy)
	fmt.Printf("  max stack peak     %d entries (%.2fM)\n", res.MaxActivePeak, float64(res.MaxActivePeak)/1e6)
	fmt.Printf("  in-core total peak %d entries (OOC saving %.1f%%)\n",
		res.MaxTotalPeak, 100*float64(res.MaxTotalPeak-res.MaxActivePeak)/float64(res.MaxTotalPeak))
	fmt.Printf("  avg stack peak     %.0f entries (balance %.2f)\n",
		res.AvgActivePeak, float64(res.MaxActivePeak)/res.AvgActivePeak)
	fmt.Printf("  factorization time %.3f s (simulated)\n", float64(res.Makespan)/1e9)
	fmt.Printf("  messages           %d (%.1f MB)\n", res.Messages, float64(res.Bytes)/1e6)
	fmt.Printf("  slave selections   %d, Algorithm-2 deviations %d\n",
		res.SlaveSelections, res.Alg2Deviations)

	if *numeric {
		if !a.HasValues() {
			log.Fatal("matrix has no values; cannot factorize numerically")
		}
		f, err := an.Factorize()
		if err != nil {
			log.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		b := make([]float64, a.N)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := f.SolveOriginal(b)
		if err != nil {
			log.Fatal(err)
		}
		ax := a.MulVec(x)
		var rn, bn float64
		for i := range b {
			d := ax[i] - b[i]
			rn += d * d
			bn += b[i] * b[i]
		}
		fmt.Printf("numeric:     peak stack %d entries, relative residual %.2e\n",
			f.Stats.PeakStack, rn/bn)
	}
}
