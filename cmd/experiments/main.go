// Command experiments regenerates the paper's evaluation tables (1-6) on
// the synthetic Table-1 suite.
//
// Usage:
//
//	experiments [-table N] [-procs P] [-small]
//
// Without -table, all six tables are printed. -small runs the reduced
// suite (fast; for smoke tests). Absolute values are not comparable to the
// paper (scaled matrices, simulated machine); the shape of the gains is.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	table := flag.Int("table", 0, "table to regenerate (1-6; 0 = all)")
	procs := flag.Int("procs", 32, "simulated processor count")
	small := flag.Bool("small", false, "use the reduced suite")
	extras := flag.Bool("extras", false, "also print the extension tables (E1 hybrid, E2 out-of-core)")
	flag.Parse()

	r := experiments.NewRunner(*procs, *small)
	emit := func(t *metrics.Table, err error) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t.Render())
	}
	want := func(n int) bool { return *table == 0 || *table == n }

	if want(1) {
		t, err := r.Table1()
		emit(t, err)
	}
	if want(2) {
		t, _, err := r.Table2()
		emit(t, err)
	}
	if want(3) {
		t, _, err := r.Table3()
		emit(t, err)
	}
	if want(4) {
		t, err := r.Table4()
		emit(t, err)
	}
	if want(5) {
		t, _, err := r.Table5()
		emit(t, err)
	}
	if want(6) {
		t, _, err := r.Table6()
		emit(t, err)
	}
	if *table < 0 || *table > 6 {
		fmt.Fprintln(os.Stderr, "tables are numbered 1-6")
		os.Exit(2)
	}
	if *extras {
		t, err := r.TableE1()
		emit(t, err)
		t, err = r.TableE2()
		emit(t, err)
	}
}
