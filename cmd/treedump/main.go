// Command treedump prints the assembly tree of a matrix with its static
// mapping: node types (T1/T2/T3), owning processors and subtree
// boundaries — a textual version of the paper's Figure 2. With -dot it
// emits Graphviz instead.
//
// Usage:
//
//	treedump -matrix NAME [-ordering METIS] [-procs P] [-depth D] [-dot]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/assembly"
	"repro/internal/core"
	"repro/internal/order"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("treedump: ")
	name := flag.String("matrix", "SHIP_003", "suite problem name")
	ordering := flag.String("ordering", "METIS", "fill-reducing ordering")
	procs := flag.Int("procs", 4, "processor count")
	depth := flag.Int("depth", 4, "max depth to print (text mode)")
	dot := flag.Bool("dot", false, "emit Graphviz dot")
	flag.Parse()

	p, err := workload.ByName(workload.Suite(), *name)
	if err != nil {
		log.Fatal(err)
	}
	var m order.Method
	switch strings.ToUpper(*ordering) {
	case "METIS", "ND":
		m = order.ND
	case "PORD":
		m = order.PORD
	case "AMD":
		m = order.AMD
	case "AMF":
		m = order.AMF
	default:
		log.Fatalf("unknown ordering %q", *ordering)
	}
	an, err := core.Analyze(p.Matrix(), core.DefaultConfig(m, *procs))
	if err != nil {
		log.Fatal(err)
	}
	t, mp := an.Tree, an.Mapping

	if *dot {
		fmt.Println("digraph assembly {")
		fmt.Println("  rankdir=BT; node [shape=box];")
		for i := range t.Nodes {
			nd := &t.Nodes[i]
			label := fmt.Sprintf("%d\\n%v P%d\\nfront %d piv %d",
				i, mp.Types[i], mp.Proc[i], nd.NFront(), nd.NPiv())
			style := ""
			if mp.Subtree[i] >= 0 {
				style = ` style=filled fillcolor="lightgrey"`
			}
			fmt.Printf("  n%d [label=\"%s\"%s];\n", i, label, style)
			if nd.Parent >= 0 {
				fmt.Printf("  n%d -> n%d;\n", i, nd.Parent)
			}
		}
		fmt.Println("}")
		return
	}

	fmt.Printf("%s / %s on %d processors: %d fronts, %d subtrees\n",
		*name, m, *procs, t.Len(), len(mp.SubRoot))
	var walk func(n, d int)
	walk = func(n, d int) {
		nd := &t.Nodes[n]
		indent := strings.Repeat("  ", d)
		tag := ""
		if s := mp.Subtree[n]; s >= 0 {
			tag = fmt.Sprintf(" [subtree %d]", s)
			if mp.SubRoot[s] == n {
				tag = fmt.Sprintf(" [subtree %d root: %d nodes below, peak %d]",
					s, subtreeSize(t, n), mp.SubPeak[s])
			}
		}
		fmt.Printf("%s%d: %v P%-2d front=%d piv=%d cb=%d%s\n",
			indent, n, mp.Types[n], mp.Proc[n], nd.NFront(), nd.NPiv(), nd.NCB(), tag)
		if d >= *depth {
			if len(nd.Children) > 0 {
				fmt.Printf("%s  ... %d children elided\n", indent, len(nd.Children))
			}
			return
		}
		if s := mp.Subtree[n]; s >= 0 && mp.SubRoot[s] == n {
			return // don't descend into subtrees
		}
		for _, c := range nd.Children {
			walk(c, d+1)
		}
	}
	for _, r := range t.Roots {
		walk(r, 0)
	}
}

func subtreeSize(t *assembly.Tree, root int) int {
	n := 0
	stack := []int{root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n++
		stack = append(stack, t.Nodes[v].Children...)
	}
	return n
}
